package apps

import (
	"esd/internal/report"
	"esd/internal/usersite"
)

// condvarSrc models a log-flush daemon with a condition-variable lost
// wakeup — the missing deadlock class in the corpus: every other hang app
// is mutex-only, so the graded SyncDistance's treatment of CondWait was
// never exercised end-to-end. The flusher checks the watermark under the
// queue lock and parks on the condvar; the submit path publishes work and
// signals WITHOUT the lock. If the signal lands after the flusher's check
// but before its wait begins, nobody is waiting yet, the notification is
// lost, and the flusher sleeps forever — main then hangs in join. The
// hang needs both the inputs (the batch must be large enough to start
// the daemon) and a schedule that threads the two-instruction window
// between check and park.
const condvarSrc = `
// condvar.c — scaled model of a log-flush daemon with a lost wakeup.

int q_lock;
int q_cond;
int pending;    // published but unflushed entries
int flushed;
int dropped;

int wm;         // flush watermark (input)
int jobs;       // entries the writer publishes (input)

// drain consumes everything published; called with q_lock held.
int drain() {
	int got = pending;
	pending = 0;
	flushed = flushed + got;
	return got;
}

// park blocks until the watermark is reached; called with q_lock held.
// The watermark check and the wait are only atomic against signalers
// that also take q_lock — which the submit path below does not.
int park() {
	if (pending < wm) {
		cond_wait(&q_cond, &q_lock);   // <-- the flusher parks here forever
	}
	return drain();
}

int flusher(int arg) {
	lock(&q_lock);
	int got = park();
	unlock(&q_lock);
	return got;
}

// submit publishes entries and notifies the flusher. Publishing outside
// the queue lock is the bug: the signal can fall into the flusher's
// check-to-wait window and wake nobody.
int submit(int n) {
	if (n <= 0) {
		dropped++;
		return -1;
	}
	pending = pending + n;
	cond_signal(&q_cond);
	return n;
}

int writer(int arg) {
	return submit(arg);
}

int main() {
	wm = input("wm");
	jobs = input("jobs");
	if (wm <= 0) {
		return 0;                      // flushing disabled: no daemon
	}
	if (jobs < wm) {
		dropped = dropped + jobs;      // below the watermark: no batch
		return 1;
	}
	int f = thread_create(flusher, 0);
	int w = thread_create(writer, jobs);
	thread_join(w);
	thread_join(f);
	return flushed * 10 + dropped;
}`

var condvarApp = register(&App{
	Name:          "condvar",
	Manifestation: "hang",
	Kind:          report.KindDeadlock,
	Source:        condvarSrc,
	UserInputs: &usersite.Inputs{
		Named: map[string]int64{"wm": 2, "jobs": 5},
	},
	Usersite: usersite.Options{Seeds: 40000, PreemptPercent: 45},
	Description: "Log-flush daemon: the watermark check and the condvar wait are " +
		"atomic only against signalers that hold the queue lock, but submit " +
		"publishes and signals without it — a signal in the check-to-wait window " +
		"is lost and the flusher (then main, in join) hangs forever.",
})
