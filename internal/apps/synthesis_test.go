package apps

import (
	"context"
	"testing"
	"time"

	"esd/internal/replay"
	"esd/internal/search"
	"esd/internal/solver"
	"esd/internal/trace"
)

// TestESDSynthesizesEveryBug is the repository's Table 1 + Figure 2
// correctness backbone: for every evaluated app, ESD must synthesize an
// execution matching the user-site coredump, and strict playback must
// deterministically reproduce the failure.
func TestESDSynthesizesEveryBug(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis of every bundled bug; skipped with -short")
	}
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			prog, err := a.Program()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := a.Coredump()
			if err != nil {
				t.Fatal(err)
			}
			// The paper's per-bug budget is 1 hour; 300s is the CI stand-in.
			// ls4 needs ~110s alone on a 2.1GHz core (solver-bound, see
			// ROADMAP.md), so 120s flaked whenever packages ran in parallel.
			res, err := search.Synthesize(context.Background(), prog, rep, search.Options{
				Strategy: search.StrategyESD,
				Budget:   300 * time.Second,
				Seed:     1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found == nil {
				t.Fatalf("ESD did not synthesize %s (timedOut=%v steps=%d states=%d otherBugs=%d)",
					a.Name, res.TimedOut, res.Steps, res.StatesCreated, len(res.OtherBugs))
			}
			ex, err := trace.FromState(res.Found, solver.New())
			if err != nil {
				t.Fatal(err)
			}
			p, err := replay.NewPlayer(prog, ex, replay.Strict)
			if err != nil {
				t.Fatal(err)
			}
			final, err := p.Run(2_000_000)
			if err != nil {
				t.Fatalf("playback diverged: %v", err)
			}
			if !rep.Matches(final) {
				t.Fatalf("playback of %s does not match the report: %s", a.Name, final.Summary())
			}
		})
	}
}

// TestLsBugsAreDistinct ensures the four injected ls bugs produce four
// different fault locations (distinct Figure 2 targets).
func TestLsBugsAreDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, name := range []string{"ls1", "ls2", "ls3", "ls4"} {
		rep, err := Get(name).Coredump()
		if err != nil {
			t.Fatal(err)
		}
		key := rep.FaultLoc.String()
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s crash at the same location %s", prev, name, key)
		}
		seen[key] = name
	}
}
