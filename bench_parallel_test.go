package esd_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"esd"
)

// The parallel-synthesis bench harness: one wall-clock measurement per
// (app, mode) cell, emitted as BENCH_parallel.json. Gated on an env var
// because a cell is a full synthesis (seconds to minutes on the hard
// apps) — this is a reporting harness, not a unit test:
//
//	ESD_BENCH_PARALLEL=BENCH_parallel.json go test -run TestBenchParallel -timeout 30m .
//
// ESD_BENCH_PARALLEL_APPS overrides the app list (comma-separated;
// default ls4,pipeline,sqlite — the hard apps where intra-synthesis
// parallelism pays). CI's bench-smoke step runs it on a quick subset and
// uploads the JSON as an artifact.
//
// The harness is also the parallel-regression gate: a frontier n=4 run
// that is materially slower than the same app's sequential run fails the
// test (the solver-bound regression this repo once shipped — ls4 at n=4
// lost 3× to n=1 before workers shared a solver fact cache). Set
// ESD_BENCH_PARALLEL_BASELINE=<committed BENCH_parallel.json> to also
// emit a per-cell delta against the committed numbers next to the output
// (<out>.delta.json), which CI uploads as an artifact.

// benchRow is one BENCH_parallel.json record.
type benchRow struct {
	App  string `json:"app"`
	Mode string `json:"mode"` // seq | frontier | portfolio
	// Workers is the frontier worker count (frontier mode); Portfolio
	// the racing variant count (portfolio mode).
	Workers   int   `json:"workers,omitempty"`
	Portfolio int   `json:"portfolio,omitempty"`
	WallNS    int64 `json:"wall_ns"`
	Steps     int64 `json:"steps"`
	Found     bool  `json:"found"`
	// Seed is the winning configuration's seed (portfolio replay handle).
	Seed int64 `json:"seed"`
	// SolverWallNS is wall time inside solver.Check, summed over every
	// solver the cell ran (all workers / the winning variant); for
	// portfolio cells it is the winner's share, so compare TotalWallNS.
	SolverWallNS int64 `json:"solver_wall_ns,omitempty"`
	// SharedHits counts component verdicts reused from the run's shared
	// cross-worker/cross-variant solver cache.
	SharedHits int `json:"shared_hits,omitempty"`
	// SpeedupVsSeq is this row's sequential wall over its own (same app).
	SpeedupVsSeq float64 `json:"speedup_vs_seq,omitempty"`
}

// benchDelta is one <out>.delta.json record: a cell's wall time against
// the committed baseline's same cell.
type benchDelta struct {
	App        string  `json:"app"`
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers,omitempty"`
	Portfolio  int     `json:"portfolio,omitempty"`
	BaseWallNS int64   `json:"base_wall_ns"`
	WallNS     int64   `json:"wall_ns"`
	Ratio      float64 `json:"ratio"` // wall / base (<1 = faster than baseline)
}

// frontierGateSlack is the regression-gate tolerance: a frontier n=4
// cell fails the harness when its wall exceeds seq × slack + 250ms. The
// multiplicative slack absorbs shared-machine noise, the additive term
// keeps millisecond-scale apps (CI's smoke subset) from tripping on
// constant goroutine overhead; the bug this gate pins down was a 3×
// slowdown, far outside both.
const frontierGateSlack = 1.25

func TestBenchParallel(t *testing.T) {
	out := os.Getenv("ESD_BENCH_PARALLEL")
	if out == "" {
		t.Skip("set ESD_BENCH_PARALLEL=<output path> to run the parallel bench harness")
	}
	appList := "ls4,pipeline,sqlite"
	if v := os.Getenv("ESD_BENCH_PARALLEL_APPS"); v != "" {
		appList = v
	}

	type mode struct {
		name      string
		workers   int
		portfolio int
	}
	modes := []mode{
		{name: "seq"},
		{name: "frontier", workers: 2},
		{name: "frontier", workers: 4},
		{name: "portfolio", portfolio: 4},
	}

	eng := esd.New()
	var rows []benchRow
	for _, name := range strings.Split(appList, ",") {
		name = strings.TrimSpace(name)
		prog, rep := appProgReport(t, name)
		var seqWall int64
		for _, m := range modes {
			opts := []esd.SynthOption{
				esd.WithBudget(5 * time.Minute), esd.WithSeed(1), esd.WithTelemetry(),
			}
			if m.workers > 1 {
				opts = append(opts, esd.WithParallelism(m.workers))
			}
			if m.portfolio > 1 {
				opts = append(opts, esd.WithPortfolio(m.portfolio))
			}
			start := time.Now()
			res, err := eng.Synthesize(context.Background(), prog, rep, opts...)
			wall := time.Since(start).Nanoseconds()
			if err != nil {
				t.Fatalf("%s %s: %v", name, m.name, err)
			}
			row := benchRow{
				App: name, Mode: m.name,
				Workers: m.workers, Portfolio: m.portfolio,
				WallNS: wall, Steps: res.Stats.Steps,
				Found: res.Found, Seed: res.Seed,
				SharedHits: res.Stats.SolverSharedHits,
			}
			if fr := res.Report(); fr != nil && fr.Wall != nil {
				row.SolverWallNS = fr.Wall.SolverNS
			}
			if m.name == "seq" {
				seqWall = wall
			} else if seqWall > 0 {
				row.SpeedupVsSeq = float64(seqWall) / float64(wall)
			}
			rows = append(rows, row)
			t.Logf("%-10s %-9s n=%d k=%d wall=%.2fs steps=%d found=%v shared=%d speedup=%.2f",
				name, m.name, m.workers, m.portfolio,
				float64(wall)/1e9, res.Stats.Steps, res.Found, row.SharedHits, row.SpeedupVsSeq)

			// The regression gate: frontier n=4 must not lose to the same
			// app's sequential run (beyond noise slack) — widening the
			// pipeline may not make it slower.
			if m.name == "frontier" && m.workers == 4 && seqWall > 0 {
				limit := int64(float64(seqWall)*frontierGateSlack) + int64(250*time.Millisecond)
				if wall > limit {
					t.Errorf("parallel regression: %s frontier n=4 wall %.2fs exceeds seq %.2fs (limit %.2fs)",
						name, float64(wall)/1e9, float64(seqWall)/1e9, float64(limit)/1e9)
				}
			}
		}
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", out, len(rows))

	if base := os.Getenv("ESD_BENCH_PARALLEL_BASELINE"); base != "" {
		writeBenchDelta(t, base, out, rows)
	}
}

// writeBenchDelta emits <out>.delta.json comparing this run's cells to
// the committed baseline's matching cells. Informational, not a gate:
// absolute walls shift with the host, so the hard checks live on
// same-run ratios above; the delta is the artifact a reviewer reads.
func writeBenchDelta(t *testing.T, basePath, out string, rows []benchRow) {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		t.Logf("baseline %s unreadable, skipping delta: %v", basePath, err)
		return
	}
	var base []benchRow
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Logf("baseline %s unparsable, skipping delta: %v", basePath, err)
		return
	}
	key := func(r benchRow) string {
		return fmt.Sprintf("%s/%s/n%d/k%d", r.App, r.Mode, r.Workers, r.Portfolio)
	}
	baseBy := make(map[string]benchRow, len(base))
	for _, r := range base {
		baseBy[key(r)] = r
	}
	var deltas []benchDelta
	for _, r := range rows {
		b, ok := baseBy[key(r)]
		if !ok || b.WallNS <= 0 {
			continue
		}
		deltas = append(deltas, benchDelta{
			App: r.App, Mode: r.Mode, Workers: r.Workers, Portfolio: r.Portfolio,
			BaseWallNS: b.WallNS, WallNS: r.WallNS,
			Ratio: float64(r.WallNS) / float64(b.WallNS),
		})
	}
	data, err := json.MarshalIndent(deltas, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	deltaPath := out + ".delta.json"
	if err := os.WriteFile(deltaPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cells vs %s)", deltaPath, len(deltas), basePath)
}
