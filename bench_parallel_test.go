package esd_test

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"esd"
)

// The parallel-synthesis bench harness: one wall-clock measurement per
// (app, mode) cell, emitted as BENCH_parallel.json. Gated on an env var
// because a cell is a full synthesis (seconds to minutes on the hard
// apps) — this is a reporting harness, not a unit test:
//
//	ESD_BENCH_PARALLEL=BENCH_parallel.json go test -run TestBenchParallel -timeout 30m .
//
// ESD_BENCH_PARALLEL_APPS overrides the app list (comma-separated;
// default ls4,pipeline,sqlite — the hard apps where intra-synthesis
// parallelism pays). CI's bench-smoke step runs it on a quick subset and
// uploads the JSON as an artifact.

// benchRow is one BENCH_parallel.json record.
type benchRow struct {
	App  string `json:"app"`
	Mode string `json:"mode"` // seq | frontier | portfolio
	// Workers is the frontier worker count (frontier mode); Portfolio
	// the racing variant count (portfolio mode).
	Workers   int   `json:"workers,omitempty"`
	Portfolio int   `json:"portfolio,omitempty"`
	WallNS    int64 `json:"wall_ns"`
	Steps     int64 `json:"steps"`
	Found     bool  `json:"found"`
	// Seed is the winning configuration's seed (portfolio replay handle).
	Seed int64 `json:"seed"`
	// SpeedupVsSeq is this row's sequential wall over its own (same app).
	SpeedupVsSeq float64 `json:"speedup_vs_seq,omitempty"`
}

func TestBenchParallel(t *testing.T) {
	out := os.Getenv("ESD_BENCH_PARALLEL")
	if out == "" {
		t.Skip("set ESD_BENCH_PARALLEL=<output path> to run the parallel bench harness")
	}
	appList := "ls4,pipeline,sqlite"
	if v := os.Getenv("ESD_BENCH_PARALLEL_APPS"); v != "" {
		appList = v
	}

	type mode struct {
		name      string
		workers   int
		portfolio int
	}
	modes := []mode{
		{name: "seq"},
		{name: "frontier", workers: 2},
		{name: "frontier", workers: 4},
		{name: "portfolio", portfolio: 4},
	}

	eng := esd.New()
	var rows []benchRow
	for _, name := range strings.Split(appList, ",") {
		name = strings.TrimSpace(name)
		prog, rep := appProgReport(t, name)
		var seqWall int64
		for _, m := range modes {
			opts := []esd.SynthOption{esd.WithBudget(5 * time.Minute), esd.WithSeed(1)}
			if m.workers > 1 {
				opts = append(opts, esd.WithParallelism(m.workers))
			}
			if m.portfolio > 1 {
				opts = append(opts, esd.WithPortfolio(m.portfolio))
			}
			start := time.Now()
			res, err := eng.Synthesize(context.Background(), prog, rep, opts...)
			wall := time.Since(start).Nanoseconds()
			if err != nil {
				t.Fatalf("%s %s: %v", name, m.name, err)
			}
			row := benchRow{
				App: name, Mode: m.name,
				Workers: m.workers, Portfolio: m.portfolio,
				WallNS: wall, Steps: res.Stats.Steps,
				Found: res.Found, Seed: res.Seed,
			}
			if m.name == "seq" {
				seqWall = wall
			} else if seqWall > 0 {
				row.SpeedupVsSeq = float64(seqWall) / float64(wall)
			}
			rows = append(rows, row)
			t.Logf("%-10s %-9s n=%d k=%d wall=%.2fs steps=%d found=%v speedup=%.2f",
				name, m.name, m.workers, m.portfolio,
				float64(wall)/1e9, res.Stats.Steps, res.Found, row.SpeedupVsSeq)
		}
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", out, len(rows))
}
