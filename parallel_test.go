package esd_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"esd"
)

// synthReport runs one listing1 synthesis with the given options (plus
// telemetry) and returns the result and its flight report.
func synthReport(t *testing.T, eng *esd.Engine, opts ...esd.SynthOption) (*esd.Result, *esd.FlightReport) {
	t.Helper()
	prog, rep := appProgReport(t, "listing1")
	opts = append([]esd.SynthOption{
		esd.WithBudget(time.Minute), esd.WithSeed(1), esd.WithTelemetry(),
	}, opts...)
	res, err := eng.Synthesize(context.Background(), prog, rep, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("listing1 synthesis did not reproduce the bug")
	}
	return res, res.Report()
}

func detJSON(t *testing.T, fr *esd.FlightReport) []byte {
	t.Helper()
	d, err := fr.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestParallelOneIsSequential is the golden n=1 identity: frontier
// parallelism 1 must run the unchanged sequential searcher, so its
// flight report and synthesized execution are byte-identical to a plain
// run of the same seed.
func TestParallelOneIsSequential(t *testing.T) {
	eng := esd.New()
	seq, seqFR := synthReport(t, eng)
	par, parFR := synthReport(t, eng, esd.WithParallelism(1))

	if d1, d2 := detJSON(t, seqFR), detJSON(t, parFR); !bytes.Equal(d1, d2) {
		t.Errorf("n=1 DeterministicJSON differs from sequential:\n--- seq ---\n%s\n--- n=1 ---\n%s", d1, d2)
	}
	if !seq.Execution.SameBug(par.Execution) {
		t.Error("n=1 synthesized a different execution than sequential")
	}
	if par.Stats.Workers != 1 {
		t.Errorf("Workers = %d, want 1", par.Stats.Workers)
	}
}

// TestPortfolioOneIsSequential is the golden k=1 identity: a portfolio
// of one is a plain single-seed run.
func TestPortfolioOneIsSequential(t *testing.T) {
	eng := esd.New()
	_, seqFR := synthReport(t, eng)
	pf, pfFR := synthReport(t, eng, esd.WithPortfolio(1))

	if d1, d2 := detJSON(t, seqFR), detJSON(t, pfFR); !bytes.Equal(d1, d2) {
		t.Errorf("k=1 DeterministicJSON differs from sequential:\n--- seq ---\n%s\n--- k=1 ---\n%s", d1, d2)
	}
	if pf.Seed != 1 {
		t.Errorf("k=1 Seed = %d, want the base seed 1", pf.Seed)
	}
}

// TestPortfolioWinnerReplays is the portfolio double-replay contract: the
// winner's Result records the seed it actually ran with, and replaying
// that seed without the portfolio re-synthesizes a byte-identical flight
// report and the same execution — the race leaves no trace in the
// winning configuration's deterministic output.
func TestPortfolioWinnerReplays(t *testing.T) {
	eng := esd.New()
	race, raceFR := synthReport(t, eng, esd.WithPortfolio(3))
	if race.Seed < 1 || race.Seed > 3 {
		t.Fatalf("winner seed = %d, want base..base+2", race.Seed)
	}

	replay, replayFR := synthReport(t, eng, esd.WithSeed(race.Seed))
	if d1, d2 := detJSON(t, raceFR), detJSON(t, replayFR); !bytes.Equal(d1, d2) {
		t.Errorf("winner's report differs from its single-seed replay (seed %d):\n--- race ---\n%s\n--- replay ---\n%s",
			race.Seed, d1, d2)
	}
	if !race.Execution.SameBug(replay.Execution) {
		t.Errorf("seed-%d replay synthesized a different execution than the portfolio winner", race.Seed)
	}
	if replay.Seed != race.Seed {
		t.Errorf("replay Seed = %d, want %d", replay.Seed, race.Seed)
	}
}

// TestParallelSynthesisViaEngine exercises the full engine path at n=4:
// the run finds the bug, records its worker count, and the flight report
// carries the parallelism plus per-worker wall attribution (in the
// stripped Wall section, where schedule-dependent numbers belong).
func TestParallelSynthesisViaEngine(t *testing.T) {
	res, fr := synthReport(t, esd.New(), esd.WithParallelism(4))
	if res.Stats.Workers != 4 {
		t.Errorf("Stats.Workers = %d, want 4", res.Stats.Workers)
	}
	if fr.Parallelism != 4 {
		t.Errorf("report Parallelism = %d, want 4", fr.Parallelism)
	}
	if fr.Wall == nil || len(fr.Wall.Workers) != 4 {
		t.Fatalf("Wall.Workers rows = %v, want 4", fr.Wall)
	}
	won := 0
	for _, ww := range fr.Wall.Workers {
		if ww.Found {
			won++
		}
	}
	if won != 1 {
		t.Errorf("winning workers = %d, want exactly 1", won)
	}
	// The deterministic body must not leak schedule-dependent rows or
	// warmth-dependent shared-cache hit counts.
	d := detJSON(t, fr)
	if bytes.Contains(d, []byte(`"workers"`)) {
		t.Error("DeterministicJSON leaked the per-worker wall section")
	}
	if bytes.Contains(d, []byte(`shared_hits`)) {
		t.Error("DeterministicJSON leaked shared-cache hit counts")
	}
}
