package esd

import "time"

// SetSweepQuiesceTuning overrides the watermark forced-quiescence tuning
// (admission-pause bound and attempt cooldown) and returns a restore
// function. Test-only: saturation tests cannot wait out the production
// 15-second cooldown.
func SetSweepQuiesceTuning(wait, cooldown time.Duration) (restore func()) {
	prevWait, prevCooldown := sweepQuiesceWait, sweepCooldown
	sweepQuiesceWait, sweepCooldown = wait, cooldown
	return func() { sweepQuiesceWait, sweepCooldown = prevWait, prevCooldown }
}
