// Package esd is an execution-synthesis debugger: given a program and a
// bug report (coredump), it automatically synthesizes an execution —
// concrete inputs plus a thread schedule — that deterministically
// reproduces the reported bug, and plays that execution back under a
// debugger-style interface.
//
// It is a from-scratch Go implementation of "Execution Synthesis: A
// Technique for Automated Software Debugging" (Zamfir & Candea, EuroSys
// 2010). Programs are written in MiniC (a C-like language with POSIX-style
// threads) and compiled to the MIR intermediate representation; synthesis
// combines static analysis (critical edges, intermediate goals) with
// proximity-guided multi-threaded symbolic execution.
//
// The entry point is the Engine: a long-lived, concurrency-safe synthesis
// core that amortizes compiled programs, per-program distance tables, and
// warm solver caches across requests, supports context cancellation and
// streaming progress, and fans batches of reports out over a worker pool:
//
//	eng := esd.New()                          // one per process
//	prog, _ := eng.Compile("app.c", source)   // memoized by source
//	rep, _  := esd.ReportFromJSON(coredumpJSON)
//	res, _  := eng.Synthesize(ctx, prog, rep,
//		esd.WithBudget(2*time.Minute),
//		esd.OnProgress(func(ev esd.ProgressEvent) { log.Println(ev.Phase, ev.Steps) }))
//	player, _ := esd.NewPlayer(prog, res.Execution, esd.Strict)
//	final, _  := player.Run(1e6)   // deterministically reproduces the bug
//
// Many reports against one program — the §8 triage workload — go through
// SynthesizeBatch, which shares one set of distance tables and compiled
// state across the pool. cmd/esdserve exposes the same engine over
// HTTP/JSON with SSE progress streaming.
//
// A single synthesis can also spend multiple cores: WithParallelism(n)
// shards the best-first frontier across n workers (work stealing, shared
// dedup, first-to-goal wins), and WithPortfolio(k) races k seed variants
// of the whole search, returning the first to reproduce the bug with its
// winning seed recorded in Result.Seed for exact single-seed replay. See
// the package README's "Parallel synthesis" section for the determinism
// contract of each mode.
//
// The pre-Engine one-shot API (Synthesize, Options) remains as thin
// deprecated wrappers over a package-default engine.
package esd

import (
	"context"
	"fmt"
	"sync"
	"time"

	"esd/internal/expr"
	"esd/internal/lang"
	"esd/internal/mir"
	"esd/internal/replay"
	"esd/internal/report"
	"esd/internal/search"
	"esd/internal/symex"
	"esd/internal/telemetry"
	"esd/internal/trace"
	"esd/internal/usersite"
)

// Program is a compiled MiniC program.
type Program struct {
	MIR *mir.Program
}

// CompileMiniC compiles MiniC source to a verified program.
func CompileMiniC(filename, source string) (*Program, error) {
	p, err := lang.Compile(filename, source)
	if err != nil {
		return nil, err
	}
	return &Program{MIR: p}, nil
}

// Dump renders the program's intermediate representation.
func (p *Program) Dump() string { return p.MIR.String() }

// NumInstrs returns the program's instruction count.
func (p *Program) NumInstrs() int { return p.MIR.NumInstrs() }

// ID returns a stable identifier derived from the program's structural
// fingerprint — the handle esdserve hands out from /compile and the key
// under which distance tables are shared across runs.
func (p *Program) ID() string {
	return fmt.Sprintf("%s-%016x", p.MIR.Name, p.MIR.Fingerprint())
}

// BugReport is a coredump-derived bug report (the input to synthesis).
type BugReport struct {
	R *report.Report
}

// ReportFromJSON parses a coredump file.
func ReportFromJSON(data []byte) (*BugReport, error) {
	r, err := report.Decode(data)
	if err != nil {
		return nil, err
	}
	return &BugReport{R: r}, nil
}

// JSON serializes the report.
func (b *BugReport) JSON() ([]byte, error) { return b.R.Encode() }

// String renders the report.
func (b *BugReport) String() string { return b.R.String() }

// Strategy selects the search strategy.
type Strategy = search.Strategy

// Search strategies: ESD's guided search and the KC baselines of §7.2.
const (
	ESD        = search.StrategyESD
	DFS        = search.StrategyDFS
	RandomPath = search.StrategyRandomPath
)

// Result is a successful or failed synthesis.
type Result struct {
	// Execution is the synthesized execution file (nil if not found).
	Execution *Execution
	// Found reports success.
	Found bool
	// TimedOut reports budget exhaustion (the synthesis budget or a
	// context deadline) as opposed to space exhaustion.
	TimedOut bool
	// Cancelled reports that the context was cancelled mid-synthesis —
	// distinct from TimedOut: the caller withdrew the request, the search
	// did not run out of budget or space.
	Cancelled bool
	// Seed is the seed the winning search configuration actually ran
	// with. For a plain synthesis it echoes WithSeed; for a portfolio
	// race it is the winning variant's seed, so replaying with
	// WithSeed(res.Seed) (and no WithPortfolio) re-synthesizes the exact
	// same execution — the strict double-replay contract covers the
	// winning configuration, not the race.
	Seed int64
	// Stats summarizes the search effort.
	Stats Stats
	// OtherBugs are failures found that do not match the report.
	OtherBugs []string
	// Preempted reports that a WithPreempt run was parked mid-search:
	// nothing was found yet, and Checkpoint holds the serialized search,
	// ready for WithResume (decode with DecodeCheckpoint). Counters in
	// Stats are cumulative across the whole resume chain.
	Preempted bool
	// Checkpoint is the encoded search checkpoint of a preempted run
	// (nil otherwise). It is self-contained — constraints are re-interned
	// on load — so it survives interner reclaim epochs and process
	// restarts.
	Checkpoint []byte
	// CheckpointNanos is the wall-clock cost of building the checkpoint
	// (serialization only, not the search), for capacity planning of the
	// job scheduler's slice length.
	CheckpointNanos int64
	// Err records a per-report failure inside SynthesizeBatch (always nil
	// on results returned directly by Synthesize, which returns its error).
	Err error

	// report is the flight-recorder report, populated only when the call
	// ran with WithTelemetry.
	report *telemetry.Report
}

// FlightReport is the per-synthesis flight-recorder report: summary
// counters plus a ring-buffered trace of phase transitions and sampled
// frontier snapshots. Its DeterministicJSON is byte-identical across runs
// of the same program, report, and seed.
type FlightReport = telemetry.Report

// Report returns the flight-recorder report of a synthesis run with
// WithTelemetry, or nil when telemetry was off.
func (r *Result) Report() *FlightReport { return r.report }

// InternerStats is the global hash-consed term store's footprint.
type InternerStats = expr.Stats

// Stats summarizes search effort.
type Stats struct {
	Duration        time.Duration
	Steps           int64
	States          int64
	BranchForks     int64
	SolverQueries   int
	SolverCacheHits int
	// SolverSharedHits counts component verdicts reused from the request's
	// shared cross-worker/cross-variant solver cache (0 for runs where
	// every component was first solved by the solver that needed it).
	SolverSharedHits int
	// SolverPersistentHits counts component verdicts served from the
	// engine's persistent cross-run cache (WithPersistentCache; 0 when no
	// cache directory is configured or the run was cold).
	// SolverVerifyRejects counts persistent entries whose stored model
	// failed re-verification against the live terms and were discarded —
	// nonzero values mean the cache directory holds entries from a
	// diverged store; the run stays correct (rejects fall through to a
	// fresh solve) but warms more slowly.
	SolverPersistentHits int
	SolverVerifyRejects  int
	// SolverWallNanos is wall-clock time spent inside the constraint
	// solver (cumulative across a resume chain, like the other counters).
	// Wall-clock, so it varies run to run; the jobs subsystem records it
	// per job.
	SolverWallNanos int64
	// Workers is the number of frontier-parallel search workers the run
	// used (1 for a sequential search; portfolio variants each count
	// their own).
	Workers int
	// Interner snapshots the process-wide term store after the run. The
	// store is append-only, so long-lived services watch this for growth
	// (also surfaced by esdserve's /healthz).
	Interner InternerStats
}

// Options tunes synthesis through the deprecated one-shot API.
//
// Deprecated: use Engine.Synthesize with SynthOption arguments
// (WithBudget, WithStrategy, WithSeed, WithAblate, ...). This struct
// remains so pre-Engine callers keep compiling.
type Options struct {
	Strategy Strategy
	Timeout  time.Duration
	// Seed makes runs deterministic.
	Seed int64
	// PreemptionBound switches to Chess-style bounded schedule search
	// (the KC baseline) when > 0.
	PreemptionBound int
	// WithRaceDetector enables Eraser-style race detection during
	// synthesis (finds race-triggered bugs and flags preemption points).
	WithRaceDetector bool
	// Ablations (see DESIGN.md §4).
	NoProximity         bool
	NoIntermediateGoals bool
	NoCriticalEdges     bool
}

// defaultEngine backs the deprecated one-shot API.
var defaultEngine = sync.OnceValue(func() *Engine { return New() })

// Synthesize searches for an execution of prog that reproduces rep,
// blocking until the search completes or the budget (Options.Timeout,
// default DefaultBudget) runs out.
//
// Deprecated: use Engine.Synthesize, which adds context cancellation,
// streaming progress, and cross-request cache reuse. This wrapper
// delegates to a package-default Engine.
func Synthesize(prog *Program, rep *BugReport, opt Options) (*Result, error) {
	return defaultEngine().synthesize(context.Background(), prog, rep, search.Options{
		Strategy:         opt.Strategy,
		Budget:           opt.Timeout,
		Seed:             opt.Seed,
		PreemptionBound:  opt.PreemptionBound,
		WithRaceDetector: opt.WithRaceDetector,
		Ablate: Ablate{
			NoProximity:         opt.NoProximity,
			NoIntermediateGoals: opt.NoIntermediateGoals,
			NoCriticalEdges:     opt.NoCriticalEdges,
		},
	})
}

// Execution is a synthesized execution file (§5.1).
type Execution struct {
	E *trace.Execution
}

// ExecutionFromJSON parses an execution file.
func ExecutionFromJSON(data []byte) (*Execution, error) {
	ex, err := trace.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Execution{E: ex}, nil
}

// JSON serializes the execution file.
func (e *Execution) JSON() ([]byte, error) { return e.E.Encode() }

// String summarizes the execution.
func (e *Execution) String() string { return e.E.String() }

// SameBug reports whether two synthesized executions reproduce the same
// bug — the automated triage/deduplication check (§8).
func (e *Execution) SameBug(o *Execution) bool { return e.E.Equal(o.E) }

// PlayMode selects schedule enforcement during playback.
type PlayMode = replay.Mode

// Playback modes (§5.1): Strict replays the exact serial schedule;
// HappensBefore enforces only the synchronization order.
const (
	Strict        = replay.Strict
	HappensBefore = replay.HappensBefore
)

// Player replays an execution deterministically with debugger affordances
// (breakpoints, stepping, backtraces).
type Player = replay.Player

// NewPlayer prepares playback of ex over prog.
func NewPlayer(prog *Program, ex *Execution, mode PlayMode) (*Player, error) {
	return replay.NewPlayer(prog.MIR, ex.E, mode)
}

// UserInputs are concrete inputs for a user-site run.
type UserInputs = usersite.Inputs

// SimulateUserSite runs prog natively (concrete inputs, randomly preempting
// scheduler) until the bug manifests, and returns the coredump-derived bug
// report — the starting point of the whole workflow.
func SimulateUserSite(prog *Program, in *UserInputs) (*BugReport, error) {
	rep, err := usersite.CoredumpFor(prog.MIR, in, usersite.Options{})
	if err != nil {
		return nil, err
	}
	return &BugReport{R: rep}, nil
}

// ReportFromFailure converts a failed concrete run into a bug report.
func ReportFromFailure(st *symex.State) (*BugReport, error) {
	r, err := report.FromState(st)
	if err != nil {
		return nil, err
	}
	return &BugReport{R: r}, nil
}
