// Package esd is an execution-synthesis debugger: given a program and a
// bug report (coredump), it automatically synthesizes an execution —
// concrete inputs plus a thread schedule — that deterministically
// reproduces the reported bug, and plays that execution back under a
// debugger-style interface.
//
// It is a from-scratch Go implementation of "Execution Synthesis: A
// Technique for Automated Software Debugging" (Zamfir & Candea, EuroSys
// 2010). Programs are written in MiniC (a C-like language with POSIX-style
// threads) and compiled to the MIR intermediate representation; synthesis
// combines static analysis (critical edges, intermediate goals) with
// proximity-guided multi-threaded symbolic execution.
//
// Typical use:
//
//	prog, _ := esd.CompileMiniC("app.c", source)
//	rep, _  := esd.ReportFromJSON(coredumpJSON)
//	res, _  := esd.Synthesize(prog, rep, esd.Options{})
//	player, _ := esd.NewPlayer(prog, res.Execution, esd.Strict)
//	final, _  := player.Run(1e6)   // deterministically reproduces the bug
package esd

import (
	"fmt"
	"time"

	"esd/internal/lang"
	"esd/internal/mir"
	"esd/internal/replay"
	"esd/internal/report"
	"esd/internal/search"
	"esd/internal/solver"
	"esd/internal/symex"
	"esd/internal/trace"
	"esd/internal/usersite"
)

// Program is a compiled MiniC program.
type Program struct {
	MIR *mir.Program
}

// CompileMiniC compiles MiniC source to a verified program.
func CompileMiniC(filename, source string) (*Program, error) {
	p, err := lang.Compile(filename, source)
	if err != nil {
		return nil, err
	}
	return &Program{MIR: p}, nil
}

// Dump renders the program's intermediate representation.
func (p *Program) Dump() string { return p.MIR.String() }

// NumInstrs returns the program's instruction count.
func (p *Program) NumInstrs() int { return p.MIR.NumInstrs() }

// BugReport is a coredump-derived bug report (the input to synthesis).
type BugReport struct {
	R *report.Report
}

// ReportFromJSON parses a coredump file.
func ReportFromJSON(data []byte) (*BugReport, error) {
	r, err := report.Decode(data)
	if err != nil {
		return nil, err
	}
	return &BugReport{R: r}, nil
}

// JSON serializes the report.
func (b *BugReport) JSON() ([]byte, error) { return b.R.Encode() }

// String renders the report.
func (b *BugReport) String() string { return b.R.String() }

// Strategy selects the search strategy.
type Strategy = search.Strategy

// Search strategies: ESD's guided search and the KC baselines of §7.2.
const (
	ESD        = search.StrategyESD
	DFS        = search.StrategyDFS
	RandomPath = search.StrategyRandomPath
)

// Options tunes synthesis. The zero value asks for ESD's guided search
// with a 10-minute budget.
type Options struct {
	Strategy Strategy
	Timeout  time.Duration
	// Seed makes runs deterministic.
	Seed int64
	// PreemptionBound switches to Chess-style bounded schedule search
	// (the KC baseline) when > 0.
	PreemptionBound int
	// WithRaceDetector enables Eraser-style race detection during
	// synthesis (finds race-triggered bugs and flags preemption points).
	WithRaceDetector bool
	// Ablations (see DESIGN.md §4).
	NoProximity         bool
	NoIntermediateGoals bool
	NoCriticalEdges     bool
}

// Result is a successful or failed synthesis.
type Result struct {
	// Execution is the synthesized execution file (nil if not found).
	Execution *Execution
	// Found reports success.
	Found bool
	// TimedOut distinguishes budget exhaustion from space exhaustion.
	TimedOut bool
	// Stats summarizes the search effort.
	Stats Stats
	// OtherBugs are failures found that do not match the report.
	OtherBugs []string
}

// Stats summarizes search effort.
type Stats struct {
	Duration      time.Duration
	Steps         int64
	States        int64
	BranchForks   int64
	SolverQueries int
}

// Synthesize searches for an execution of prog that reproduces rep.
func Synthesize(prog *Program, rep *BugReport, opt Options) (*Result, error) {
	if opt.Timeout == 0 {
		opt.Timeout = 10 * time.Minute
	}
	res, err := search.Synthesize(prog.MIR, rep.R, search.Options{
		Strategy:            opt.Strategy,
		Timeout:             opt.Timeout,
		Seed:                opt.Seed,
		PreemptionBound:     opt.PreemptionBound,
		WithRaceDetector:    opt.WithRaceDetector,
		NoProximity:         opt.NoProximity,
		NoIntermediateGoals: opt.NoIntermediateGoals,
		NoCriticalEdges:     opt.NoCriticalEdges,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		TimedOut:  res.TimedOut,
		OtherBugs: res.OtherBugs,
		Stats: Stats{
			Duration:      res.Duration,
			Steps:         res.Steps,
			States:        res.StatesCreated,
			BranchForks:   res.BranchForks,
			SolverQueries: res.SolverQueries,
		},
	}
	if res.Found != nil {
		ex, err := trace.FromState(res.Found, solver.New())
		if err != nil {
			return nil, fmt.Errorf("esd: solving synthesized path: %w", err)
		}
		out.Execution = &Execution{E: ex}
		out.Found = true
	}
	return out, nil
}

// Execution is a synthesized execution file (§5.1).
type Execution struct {
	E *trace.Execution
}

// ExecutionFromJSON parses an execution file.
func ExecutionFromJSON(data []byte) (*Execution, error) {
	ex, err := trace.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Execution{E: ex}, nil
}

// JSON serializes the execution file.
func (e *Execution) JSON() ([]byte, error) { return e.E.Encode() }

// String summarizes the execution.
func (e *Execution) String() string { return e.E.String() }

// SameBug reports whether two synthesized executions reproduce the same
// bug — the automated triage/deduplication check (§8).
func (e *Execution) SameBug(o *Execution) bool { return e.E.Equal(o.E) }

// PlayMode selects schedule enforcement during playback.
type PlayMode = replay.Mode

// Playback modes (§5.1): Strict replays the exact serial schedule;
// HappensBefore enforces only the synchronization order.
const (
	Strict        = replay.Strict
	HappensBefore = replay.HappensBefore
)

// Player replays an execution deterministically with debugger affordances
// (breakpoints, stepping, backtraces).
type Player = replay.Player

// NewPlayer prepares playback of ex over prog.
func NewPlayer(prog *Program, ex *Execution, mode PlayMode) (*Player, error) {
	return replay.NewPlayer(prog.MIR, ex.E, mode)
}

// UserInputs are concrete inputs for a user-site run.
type UserInputs = usersite.Inputs

// SimulateUserSite runs prog natively (concrete inputs, randomly preempting
// scheduler) until the bug manifests, and returns the coredump-derived bug
// report — the starting point of the whole workflow.
func SimulateUserSite(prog *Program, in *UserInputs) (*BugReport, error) {
	rep, err := usersite.CoredumpFor(prog.MIR, in, usersite.Options{})
	if err != nil {
		return nil, err
	}
	return &BugReport{R: rep}, nil
}

// ReportFromFailure converts a failed concrete run into a bug report.
func ReportFromFailure(st *symex.State) (*BugReport, error) {
	r, err := report.FromState(st)
	if err != nil {
		return nil, err
	}
	return &BugReport{R: r}, nil
}
