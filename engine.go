package esd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"esd/internal/dist"
	"esd/internal/expr"
	"esd/internal/pcache"
	"esd/internal/search"
	"esd/internal/solver"
	"esd/internal/telemetry"
	"esd/internal/trace"
)

// DefaultBudget is the per-synthesis wall-clock budget applied when
// neither a SynthOption nor the context imposes a tighter bound. It is
// the engine-level replacement for the 10-minute default the deprecated
// Synthesize wrapper used to hardcode; override it per engine with
// WithDefaultBudget or per call with WithBudget.
const DefaultBudget = 10 * time.Minute

// Engine is the long-lived synthesis core: it amortizes compiled
// programs, per-program distance tables (via the fingerprint-keyed
// dist cache), and warm solver caches across requests, and is safe for
// concurrent use. Create one per process (or per tenant) with New; the
// esdserve service and the CLIs all run on top of it.
type Engine struct {
	defaultBudget time.Duration
	maxConcurrent int
	onProgress    func(ProgressEvent)
	// internerHighWater is the reclaim watermark: when the global interned-
	// term store exceeds this many bytes and no synthesis is in flight, the
	// engine runs an epoch sweep (expr.TryReclaim). Zero disables the
	// policy (the pre-reclaim append-only behavior).
	internerHighWater int64

	// solvers pools warm solvers: a solver's memoized query cache is
	// keyed by canonical structural term fingerprints, so reusing one
	// across requests (even for different programs) only adds hits.
	// Solvers are single-threaded, so concurrent syntheses each take
	// their own.
	solvers sync.Pool

	// pcache is the persistent cross-run solver-fact store
	// (WithPersistentCache); nil when no cache directory is configured.
	// pcacheErr records a failed open — the engine then runs without the
	// persistent tier rather than failing construction, and surfaces the
	// error via PersistentCacheError.
	pcache    *pcache.Store
	pcacheErr error

	mu       sync.Mutex
	programs map[string]*Program // Compile cache, keyed by source hash

	active         atomic.Int64
	batchQueued    atomic.Int64
	synthesized    atomic.Int64
	found          atomic.Int64
	portfolioRaces atomic.Int64
	portfolioWon   atomic.Int64
	compiled       atomic.Int64
	compileHits    atomic.Int64
	sweeps         atomic.Int64
	sweptBytes     atomic.Int64
	// lastQuiesce is the UnixNano of the last forced-quiescence sweep
	// attempt (the rate limiter for sweepQuiesceWait admission pauses).
	lastQuiesce atomic.Int64
}

// Watermark-sweep quiescence tuning. On a server that is never idle, a
// sweep window has to be made: when the watermark is exceeded and an
// opportunistic TryReclaim keeps losing to in-flight pins, MaybeReclaim
// briefly blocks new admissions (expr.ReclaimWait) so running syntheses
// can drain. sweepQuiesceWait bounds that admission pause; sweepCooldown
// bounds how often it may be attempted, so a long-running synthesis that
// cannot drain within the wait costs at most one pause per cooldown.
// These are vars, not consts, so tests can tighten them.
var (
	sweepQuiesceWait = 500 * time.Millisecond
	sweepCooldown    = 15 * time.Second
)

// Option configures an Engine at construction.
type Option func(*Engine)

// WithDefaultBudget sets the wall-clock budget used by syntheses that do
// not specify their own (default DefaultBudget).
func WithDefaultBudget(d time.Duration) Option {
	return func(e *Engine) { e.defaultBudget = d }
}

// WithMaxConcurrent bounds the batch worker pool (default GOMAXPROCS).
func WithMaxConcurrent(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxConcurrent = n
		}
	}
}

// WithInternerHighWater sets the reclaim watermark: once the global
// interned-term store (expr.InternerStats().Bytes) exceeds bytes, the
// engine runs a stop-the-world epoch sweep at the next moment no
// synthesis is in flight, reclaiming every term unreachable from the
// registered roots. Zero (the default) disables reclamation, matching the
// historical append-only behavior — fine for CLIs, not for a long-lived
// service. The sweep never runs under an active synthesis: in-flight runs
// pin the term universe, and admission briefly quiesces while a sweep is
// in progress. Passing 0 (or a negative value) disables reclamation even
// if an earlier option in the list enabled it.
func WithInternerHighWater(bytes int64) Option {
	return func(e *Engine) {
		if bytes < 0 {
			bytes = 0
		}
		e.internerHighWater = bytes
	}
}

// WithPersistentCache opens (creating if needed) a persistent cross-run
// solver-fact store in dir and attaches it as the engine's outermost
// cache tier: every synthesis consults it (scoped to the program's
// structural fingerprint) when the private and request-shared tiers
// miss, and publishes every definite component verdict back. Because
// entries are keyed by canonical structural fingerprints — not process-
// local intern identities — a verdict written by one process is a hit
// in the next, across restarts and epoch sweeps.
//
// Correctness does not depend on the directory's contents: Sat models
// are re-verified by concrete evaluation against the live terms before
// a hit is served, and the store discards entries written under a
// different structural-key version at open. Warm runs are therefore
// bit-identical to cold runs (the determinism contract); only wall
// clock changes. If the store cannot be opened, the engine runs without
// the persistent tier and PersistentCacheError reports why. Call Close
// at shutdown to compact the store.
func WithPersistentCache(dir string) Option {
	return func(e *Engine) {
		e.pcache, e.pcacheErr = pcache.Open(dir)
	}
}

// PersistentCacheError reports why WithPersistentCache's store failed to
// open (nil when it opened, or was never configured). The engine
// degrades to in-memory caching on failure rather than refusing to
// start; services surface this from their health endpoint.
func (e *Engine) PersistentCacheError() error { return e.pcacheErr }

// Close flushes and closes the engine's persistent cache store, if any.
// The engine remains usable for synthesis afterwards — lookups keep
// answering from memory and publishes are dropped — so a shutdown race
// with an in-flight synthesis is benign; call it once at process exit.
func (e *Engine) Close() error {
	if e.pcache == nil {
		return nil
	}
	return e.pcache.Close()
}

// WithProgress installs an engine-wide default progress hook, used by
// syntheses that do not pass their own OnProgress option. The engine
// serializes calls to it, so a single hook shared by concurrent
// Synthesize calls never runs concurrently with itself.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(e *Engine) { e.onProgress = fn }
}

// New builds an Engine with the given options.
func New(opts ...Option) *Engine {
	e := &Engine{
		defaultBudget: DefaultBudget,
		maxConcurrent: runtime.GOMAXPROCS(0),
		programs:      map[string]*Program{},
	}
	e.solvers.New = func() any { return solver.New() }
	for _, o := range opts {
		o(e)
	}
	if fn := e.onProgress; fn != nil {
		// The engine is documented safe for concurrent use, so the shared
		// default hook must not become a data race when two Synthesize
		// calls fall back to it (per-call OnProgress hooks belong to their
		// caller and stay unserialized).
		var mu sync.Mutex
		e.onProgress = func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			fn(ev)
		}
	}
	return e
}

// maxCachedPrograms bounds the Compile memo. The steady state is many
// reports against a handful of builds, so the cap is generous; but a
// client churning distinct sources (fuzzing, CI) must not grow the
// engine without bound. Eviction is arbitrary-entry: no access-order
// bookkeeping on the hit path, and a re-compile of an evicted program
// is cheap relative to a synthesis.
const maxCachedPrograms = 256

// Compile compiles MiniC source, memoizing by source text: repeated
// requests for the same program (the service's steady state — many bug
// reports against one build) share one compiled program and therefore
// one distance-table cache entry.
func (e *Engine) Compile(filename, source string) (*Program, error) {
	sum := sha256.Sum256(append([]byte(filename+"\x00"), source...))
	key := hex.EncodeToString(sum[:])
	e.mu.Lock()
	if p, ok := e.programs[key]; ok {
		e.mu.Unlock()
		e.compileHits.Add(1)
		return p, nil
	}
	e.mu.Unlock()
	// Compile outside the lock: concurrent first-time compiles of
	// different programs must not serialize. A racing duplicate compile
	// of the same source is harmless (last one wins; both are identical).
	p, err := CompileMiniC(filename, source)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev, ok := e.programs[key]; ok {
		p = prev
	} else {
		for k := range e.programs {
			if len(e.programs) < maxCachedPrograms {
				break
			}
			delete(e.programs, k)
		}
		e.programs[key] = p
		e.compiled.Add(1)
	}
	e.mu.Unlock()
	return p, nil
}

// ProgressEvent is a streaming synthesis-progress snapshot (phase
// transitions plus periodic step/state/frontier/distance counters).
type ProgressEvent = search.ProgressEvent

// Phase identifies the synthesis pipeline stage of a ProgressEvent.
type Phase = search.Phase

// Synthesis phases, in pipeline order.
const (
	PhaseAnalyze = search.PhaseAnalyze
	PhaseSearch  = search.PhaseSearch
	PhaseSolve   = search.PhaseSolve
	PhaseDone    = search.PhaseDone
)

// Ablate disables individual search-focusing techniques (the §7.3
// ablation study). The zero value runs full ESD.
type Ablate = search.Ablate

// SynthOption tunes one Synthesize or SynthesizeBatch call.
type SynthOption func(*search.Options)

// WithStrategy selects the search strategy (default ESD).
func WithStrategy(s Strategy) SynthOption {
	return func(o *search.Options) { o.Strategy = s }
}

// WithBudget bounds the synthesis wall-clock time. Zero means the
// engine's default budget; the context's deadline applies when tighter.
func WithBudget(d time.Duration) SynthOption {
	return func(o *search.Options) { o.Budget = d }
}

// WithSeed makes the run deterministic for a given seed.
func WithSeed(seed int64) SynthOption {
	return func(o *search.Options) { o.Seed = seed }
}

// WithPreemptionBound switches to Chess-style bounded schedule search
// (the KC baseline) when n > 0.
func WithPreemptionBound(n int) SynthOption {
	return func(o *search.Options) { o.PreemptionBound = n }
}

// WithRaceDetection enables Eraser-style race detection during synthesis
// (finds race-triggered bugs and flags preemption points).
func WithRaceDetection() SynthOption {
	return func(o *search.Options) { o.WithRaceDetector = true }
}

// WithAblate disables individual search-focusing techniques.
func WithAblate(a Ablate) SynthOption {
	return func(o *search.Options) { o.Ablate = a }
}

// WithMaxSteps bounds total executed instructions (0 = default 50M).
func WithMaxSteps(n int64) SynthOption {
	return func(o *search.Options) { o.MaxSteps = n }
}

// WithParallelism runs the search frontier-parallel: n workers share one
// sharded priority frontier (stealing work from each other's shards),
// one cross-worker dedup set, and the compiled program and distance
// tables, each running its own symbolic VM and solver; the first worker
// to reach the goal cancels the rest. n <= 1 runs the unchanged
// sequential searcher, so WithParallelism(1) is bit-identical to the
// default. Frontier-parallel runs explore the same state space as the
// sequential search but in a schedule-dependent order, so their step
// counts and flight traces vary run to run; the synthesized execution
// still strict-replays exactly.
func WithParallelism(n int) SynthOption {
	return func(o *search.Options) { o.Parallelism = n }
}

// WithPortfolio races k complete searches of the same synthesis, seeded
// WithSeed's base value through base+k-1, sharing the compiled program,
// distance tables, and interned terms; the first variant to reproduce
// the bug cancels the rest. The winner's Result records its own seed
// (Result.Seed), and replaying that seed without the portfolio
// re-synthesizes the identical execution — the determinism contract
// covers the winning configuration, not the race. k <= 1 is a plain
// single search; k is capped at 16. Portfolio racing composes with
// WithParallelism (each variant then runs frontier-parallel).
func WithPortfolio(k int) SynthOption {
	return func(o *search.Options) { o.Portfolio = k }
}

// OnProgress streams progress events for this call (overrides the
// engine-wide hook). The callback runs synchronously on the synthesis
// goroutine — keep it fast. SynthesizeBatch serializes calls across its
// workers, so a single callback never runs concurrently with itself.
func OnProgress(fn func(ProgressEvent)) SynthOption {
	return func(o *search.Options) { o.OnProgress = fn }
}

// WithBatchWorkers caps the worker pool of the SynthesizeBatch call it
// is passed to (at most the engine's WithMaxConcurrent). Services use it
// to charge a batch against their own admission budget. Ignored by
// Synthesize.
func WithBatchWorkers(n int) SynthOption {
	return func(o *search.Options) { o.BatchWorkers = n }
}

// WithTelemetry attaches a flight recorder to the call: the Result (each
// result, for SynthesizeBatch) carries a Report with the run's counter
// summary and a ring-buffered trace of phase transitions and sampled
// frontier snapshots. Disabled, the recorder costs one nil check per
// sample site; enabled, sampling is keyed to deterministic pick counts, so
// the report's DeterministicJSON is byte-identical across replays of the
// same seed.
func WithTelemetry() SynthOption {
	return func(o *search.Options) { o.Recorder = telemetry.NewRecorder(0) }
}

// Checkpoint is a preempted synthesis, serialized: the search frontier,
// state graph, RNG position, and counters, re-interned on load so it
// survives interner reclaim epochs and process restarts. Produced by a
// WithPreempt run (Result.Checkpoint), consumed by WithResume.
type Checkpoint = search.Checkpoint

// DecodeCheckpoint parses a checkpoint produced by a preempted synthesis
// (Result.Checkpoint holds the encoded form).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	return search.DecodeCheckpoint(data)
}

// WithPreempt makes the synthesis preemptible: fn is polled at the top of
// every search iteration (never mid-quantum), and returning true parks
// the run — the Result comes back with Preempted set and Checkpoint
// holding the serialized search, resumable later with WithResume. The
// jobs scheduler uses this to time-slice long syntheses. Preemptible runs
// are single-configuration: WithPortfolio is ignored (a seed race has no
// single deterministic frontier to checkpoint) and WithParallelism must
// be <= 1. A resumed chain's final Result — counters, flight report,
// DeterministicJSON — is byte-identical to an uninterrupted run's.
func WithPreempt(fn func() bool) SynthOption {
	return func(o *search.Options) { o.Preempt = fn }
}

// WithResume continues a preempted synthesis from its checkpoint instead
// of starting fresh. The program, report goals, and determinism-steering
// options (strategy, seed, quantum, step and state caps, ablations) must
// match the checkpointed run's; the budget may differ. Combine with
// WithPreempt to keep time-slicing the resumed run.
func WithResume(ck *Checkpoint) SynthOption {
	return func(o *search.Options) { o.Resume = ck }
}

// Synthesize searches for an execution of prog that reproduces rep. It
// honors ctx: cancellation aborts the search promptly (the VM polls the
// context on a short step cadence) and is reported as Result.Cancelled;
// a ctx deadline tighter than the budget is reported as TimedOut.
func (e *Engine) Synthesize(ctx context.Context, prog *Program, rep *BugReport, opts ...SynthOption) (*Result, error) {
	var so search.Options
	for _, o := range opts {
		o(&so)
	}
	return e.synthesize(ctx, prog, rep, so)
}

func (e *Engine) synthesize(ctx context.Context, prog *Program, rep *BugReport, so search.Options) (*Result, error) {
	res, err := e.synthesizePinned(ctx, prog, rep, so)
	// The reclaim check runs after the synthesis pin is released (deferred
	// in synthesizePinned), so the completing request itself can trigger
	// the sweep its growth warranted.
	e.MaybeReclaim()
	return res, err
}

func (e *Engine) synthesizePinned(ctx context.Context, prog *Program, rep *BugReport, so search.Options) (*Result, error) {
	reqStart := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if so.Budget == 0 {
		so.Budget = e.defaultBudget
	}
	// Honor a context deadline tighter than the budget: the search's own
	// wall-clock check then fires first and reports TimedOut without
	// waiting for the context machinery.
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < so.Budget {
			if rem <= 0 {
				// Already expired. A negative budget must not reach the
				// search: search.Options treats Budget <= 0 as "no
				// wall-clock limit", so the run would burn the full step
				// cap before noticing the context. Report the timeout
				// immediately instead.
				e.synthesized.Add(1)
				return &Result{TimedOut: true, Stats: Stats{Interner: expr.InternerStats()}}, nil
			}
			so.Budget = rem
		}
	}
	if so.OnProgress == nil {
		so.OnProgress = e.onProgress
	}
	if so.Solver == nil {
		sol := e.solvers.Get().(*solver.Solver)
		defer e.solvers.Put(sol)
		so.Solver = sol
	}
	if so.Solvers == nil {
		// Frontier-parallel workers draw their per-worker solvers from
		// the engine's warm pool instead of building cold ones.
		so.Solvers = enginePool{e}
	}

	// Pin the interned-term universe for the whole request — the search
	// plus the path concretization below — so a watermark sweep can never
	// land under an in-flight synthesis (the quiescence gate).
	release := expr.Pin()
	defer release()
	e.active.Add(1)
	defer e.active.Add(-1)
	// Request-scoped shared fact layers, created under the pin (so the
	// interner epoch cannot move for their whole lifetime): the solver
	// component cache and the infinite-distance prune memo are shared by
	// every frontier worker and every portfolio variant of this request.
	// They are attached unconditionally — n=1/k=1 runs carry them too,
	// which is what the determinism contract tests exercise (sharing is
	// sound because the cached verdicts are pure functions of their keys).
	if so.SharedCache == nil {
		so.SharedCache = solver.NewSharedCache()
	}
	if so.PruneFacts == nil {
		so.PruneFacts = search.NewPruneFacts()
	}
	if so.PersistCache == nil && e.pcache != nil {
		// The persistent tier sits outside the request-shared cache and is
		// scoped by the program's structural fingerprint; every worker and
		// portfolio variant of this request shares the one view.
		so.PersistCache = e.pcache.ForProgram(prog.MIR.Fingerprint())
	}
	if so.Portfolio > 1 && (so.Preempt != nil || so.Resume != nil) {
		// Preemptible runs are single-configuration (see WithPreempt): a
		// seed race has no single deterministic frontier to checkpoint.
		so.Portfolio = 0
	}
	var res *search.Result
	var err error
	var pfRequested, pfEffective int
	if so.Portfolio > 1 {
		pfRequested = so.Portfolio
		orig := so.Solver
		res, so, pfEffective, err = e.portfolioRace(ctx, prog, rep, so)
		if err == nil && so.Solver != orig {
			// The winner was a secondary variant: its pooled solver stays
			// checked out through the solve phase below.
			defer e.solvers.Put(so.Solver)
		}
	} else {
		res, err = search.Synthesize(ctx, prog.MIR, rep.R, so)
	}
	e.synthesized.Add(1)
	if err != nil {
		return nil, err
	}
	out := &Result{
		TimedOut:  res.TimedOut,
		Cancelled: res.Cancelled,
		OtherBugs: res.OtherBugs,
		Seed:      res.Seed,
		Stats: Stats{
			Duration:             res.Duration,
			Steps:                res.Steps,
			States:               res.StatesCreated,
			BranchForks:          res.BranchForks,
			SolverQueries:        res.SolverQueries,
			SolverCacheHits:      res.SolverHits,
			SolverSharedHits:     res.SolverSharedHits,
			SolverPersistentHits: res.SolverPersistentHits,
			SolverVerifyRejects:  res.SolverVerifyRejects,
			SolverWallNanos:      res.SolverWallNanos,
			Workers:              res.Workers,
			Interner:             expr.InternerStats(),
		},
	}
	if res.Preempted {
		// The run is parked, not done: hand back the serialized search and
		// skip the solve phase and the done event — the segment that finally
		// completes the resumed chain finishes the trace, keeping the chain's
		// final report byte-identical to an uninterrupted run's.
		blob, err := res.Checkpoint.Encode()
		if err != nil {
			return nil, fmt.Errorf("esd: encoding checkpoint: %w", err)
		}
		out.Preempted = true
		out.Checkpoint = blob
		out.CheckpointNanos = res.CheckpointNanos
		if so.Recorder != nil {
			out.report = buildFlightReport(so, rep, res, 0, time.Since(reqStart), pfRequested, pfEffective)
		}
		return out, nil
	}
	emit := func(ph Phase) {
		if so.OnProgress != nil {
			so.OnProgress(ProgressEvent{Phase: ph, Time: time.Now(), Elapsed: res.Duration, Steps: res.Steps, States: res.StatesCreated, SolverQueries: res.SolverQueries})
		}
		so.Recorder.Phase(ph.String(), res.Steps, res.StatesCreated)
	}
	var solveNS int64
	if res.Found != nil {
		emit(PhaseSolve)
		solveStart := time.Now()
		// The solve phase re-checks the winner's path condition; the search
		// already decided (and published) those components, so attaching
		// the request cache turns most of the phase into lookups. Detach
		// before the pooled solver goes back (deferred Put above).
		so.Solver.Shared = so.SharedCache
		ex, err := trace.FromState(res.Found, so.Solver)
		so.Solver.Shared = nil
		solveNS = time.Since(solveStart).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("esd: solving synthesized path: %w", err)
		}
		out.Execution = &Execution{E: ex}
		out.Found = true
		e.found.Add(1)
	}
	emit(PhaseDone)
	if so.Recorder != nil {
		out.report = buildFlightReport(so, rep, res, solveNS, time.Since(reqStart), pfRequested, pfEffective)
	}
	return out, nil
}

// enginePool adapts the engine's warm solver pool to the search package's
// SolverPool interface (per-worker solvers for frontier-parallel runs).
type enginePool struct{ e *Engine }

func (p enginePool) Get() *solver.Solver  { return p.e.solvers.Get().(*solver.Solver) }
func (p enginePool) Put(s *solver.Solver) { p.e.solvers.Put(s) }

// maxPortfolio caps WithPortfolio: beyond a handful of variants the
// marginal seed diversity buys almost nothing and the extra searches
// just contend for cores.
const maxPortfolio = 16

var (
	portfolioOutcomes = telemetry.NewCounterVec("esd_portfolio_outcomes_total",
		"Portfolio races completed, by outcome of the winning (or, with no winner, the base-seed) variant.",
		"outcome")
	portfolioWins = telemetry.NewCounterVec("esd_portfolio_wins_total",
		"Portfolio races that reproduced the bug, by winning variant index.",
		"variant")
	portfolioSharedHits = telemetry.NewCounterVec("esd_portfolio_shared_hits_total",
		"Component verdicts portfolio variants reused from the race's shared solver cache, by variant index — the cross-variant work the race no longer duplicates.",
		"variant")
)

// portfolioRace runs k = so.Portfolio complete searches of the same
// synthesis with seeds base, base+1, …, base+k-1, racing them to the
// goal; the first variant to reproduce the bug cancels the rest. It
// returns the winning result together with the options that produced it
// — the winner's seed, solver, and recorder — so the caller's solve
// phase and flight report describe the winning configuration exactly as
// a single-seed run of that seed would, plus the effective variant count
// after admission clamping (recorded in the flight report's wall
// section). With no winner, variant 0 (the caller's own seed) is the
// representative result: its timeout, exhaustion, or error is what a
// plain run would have reported.
//
// Admission adapts to the machine: beyond the hard maxPortfolio cap, k is
// clamped to the parallelism actually available — GOMAXPROCS divided by
// the workers each variant will run — so a portfolio request on a small
// box degrades to fewer variants instead of k full searches timeslicing
// each other into uniform slowness.
func (e *Engine) portfolioRace(ctx context.Context, prog *Program, rep *BugReport, base search.Options) (*search.Result, search.Options, int, error) {
	k := base.Portfolio
	if k > maxPortfolio {
		k = maxPortfolio
	}
	perVariant := base.Parallelism
	if perVariant < 1 {
		perVariant = 1
	}
	if avail := runtime.GOMAXPROCS(0) / perVariant; k > avail {
		k = avail
	}
	if k < 1 {
		k = 1
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type lane struct {
		so  search.Options
		res *search.Result
		err error
	}
	lanes := make([]lane, k)
	var winner atomic.Int32
	winner.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		vo := base
		vo.Portfolio = 0
		vo.Seed = base.Seed + int64(i)
		if i > 0 {
			// Secondary variants stream no progress (the OnProgress
			// contract is a single run's event stream), record into their
			// own flight recorder, and draw their own warm solver —
			// solvers are single-threaded.
			vo.OnProgress = nil
			if vo.Recorder != nil {
				vo.Recorder = telemetry.NewRecorder(0)
			}
			vo.Solver = e.solvers.Get().(*solver.Solver)
		}
		lanes[i].so = vo
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := search.Synthesize(raceCtx, prog.MIR, rep.R, lanes[i].so)
			lanes[i].res, lanes[i].err = res, err
			if err == nil && res.Found != nil && winner.CompareAndSwap(-1, int32(i)) {
				cancel()
			}
		}(i)
	}
	wg.Wait()

	win := int(winner.Load())
	if win < 0 {
		win = 0
	}
	for i := range lanes {
		if r := lanes[i].res; r != nil && r.SolverSharedHits > 0 {
			portfolioSharedHits.With(strconv.Itoa(i)).Add(int64(r.SolverSharedHits))
		}
	}
	// Losing variants' pooled solvers go back now (their goroutines have
	// exited); the winner's stays checked out for the solve phase.
	for i := 1; i < k; i++ {
		if i != win {
			e.solvers.Put(lanes[i].so.Solver)
		}
	}
	e.portfolioRaces.Add(1)
	l := lanes[win]
	if l.err != nil {
		// Only reachable with no winner (win == 0): surface the base
		// variant's error and hand the caller's own options back so its
		// solver bookkeeping sees no substitution.
		return nil, base, k, l.err
	}
	if l.res.Found != nil {
		e.portfolioWon.Add(1)
		portfolioWins.With(strconv.Itoa(win)).Inc()
	}
	portfolioOutcomes.With(l.res.Outcome()).Inc()
	return l.res, l.so, k, nil
}

// buildFlightReport assembles the WithTelemetry report from a finished
// run: the search's deterministic counters and trace, plus the wall-clock
// attribution section (which DeterministicJSON strips — wall times and
// warm-solver cache hits vary run to run; pfRequested/pfEffective record
// portfolio admission clamping, a property of the machine, not the seed).
func buildFlightReport(so search.Options, rep *BugReport, res *search.Result, solveNS int64, total time.Duration, pfRequested, pfEffective int) *telemetry.Report {
	searchNS := res.Duration.Nanoseconds() - res.SolverWallNanos
	if searchNS < 0 {
		searchNS = 0
	}
	par := 0
	if res.Workers > 1 {
		par = res.Workers
	}
	return &telemetry.Report{
		Schema:      telemetry.ReportSchema,
		Outcome:     res.Outcome(),
		Strategy:    so.Strategy.String(),
		Seed:        res.Seed,
		GoalQueues:  res.IntermediateGoalSets + len(rep.R.Goals()),
		Parallelism: par,
		DedupDrops:  res.DedupDrops,
		Steps:       res.Steps,
		States:      res.StatesCreated,
		MaxDepth:    res.MaxDepth,
		Forks: map[string]int64{
			"branch":              res.BranchForks,
			"sched":               res.SchedForks,
			"eager":               int64(res.EagerForks),
			"snapshot":            int64(res.SnapshotsTaken),
			"snapshot_activation": int64(res.SnapshotsActivated),
		},
		AgingPicks: res.AgingPicks,
		Pruned: map[string]int64{
			"critical_edge":     res.PrunedCritical,
			"infinite_distance": res.PrunedInfinite,
		},
		Sheds: res.Sheds,
		Solver: telemetry.SolverStats{
			Queries:         int64(res.SolverQueries),
			Concretizations: res.Concretizations,
		},
		Trace:        so.Recorder.Events(),
		TraceDropped: so.Recorder.Dropped(),
		Wall: &telemetry.WallStats{
			TotalNS:              total.Nanoseconds(),
			SearchNS:             searchNS,
			SolverNS:             res.SolverWallNanos,
			SolveNS:              solveNS,
			SolverCacheHits:      int64(res.SolverHits),
			SolverSharedHits:     int64(res.SolverSharedHits),
			SolverPersistentHits: int64(res.SolverPersistentHits),
			SolverVerifyRejects:  int64(res.SolverVerifyRejects),
			PortfolioRequested:   pfRequested,
			PortfolioEffective:   pfEffective,
			Workers:              res.WorkerWall,
		},
	}
}

// SynthesizeBatch synthesizes every report against one program, fanning
// out over a bounded worker pool (WithMaxConcurrent). All workers share
// the compiled program, its fingerprint-keyed distance tables, and the
// engine's warm solver pool — the per-request setup a one-shot call pays
// is paid once per batch. Results align with reports by index; per-report
// failures land in Result.Err rather than aborting the batch. Progress
// events carry the report index in ProgressEvent.Report.
func (e *Engine) SynthesizeBatch(ctx context.Context, prog *Program, reports []*BugReport, opts ...SynthOption) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var base search.Options
	for _, o := range opts {
		o(&base)
	}
	results := make([]*Result, len(reports))
	if len(reports) == 0 {
		return results, nil
	}
	workers := e.maxConcurrent
	if base.BatchWorkers > 0 && base.BatchWorkers < workers {
		workers = base.BatchWorkers
	}
	if workers > len(reports) {
		workers = len(reports)
	}
	if workers < 1 {
		workers = 1
	}
	// One mutex serializes the user's progress callback across workers:
	// the OnProgress contract is a single-goroutine callback, and batch
	// fan-out must not silently turn it into a data race.
	var progressMu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				e.batchQueued.Add(-1)
				if err := ctx.Err(); err != nil {
					results[i] = &Result{Cancelled: true, Err: err}
					continue
				}
				so := base
				if so.Recorder != nil {
					// A recorder is single-run state: the base one would be
					// shared (and raced on) by every worker, so each report
					// records into its own.
					so.Recorder = telemetry.NewRecorder(0)
				}
				if so.OnProgress == nil {
					so.OnProgress = e.onProgress
				}
				if fn := so.OnProgress; fn != nil {
					report := i
					so.OnProgress = func(ev ProgressEvent) {
						ev.Report = report
						progressMu.Lock()
						defer progressMu.Unlock()
						fn(ev)
					}
				}
				res, err := e.synthesize(ctx, prog, reports[i], so)
				if err != nil {
					res = &Result{Err: err}
				}
				results[i] = res
			}
		}()
	}
	// The whole batch is queued up front (workers drain the unbuffered
	// channel), so the gauge reports how many reports still await a worker.
	e.batchQueued.Add(int64(len(reports)))
	for i := range reports {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, nil
}

// MaybeReclaim applies the engine's watermark policy: if a high-water
// mark is configured (WithInternerHighWater) and the interner footprint
// exceeds it, it runs one epoch sweep at the first opportunity. The
// opportunistic path costs nothing and sweeps only when nothing is
// pinned; when in-flight work keeps winning that race (a server that is
// never idle), a rate-limited fallback briefly pauses new admissions
// (expr.ReclaimWait) so the running syntheses can drain — otherwise a
// saturated server would never reclaim at all. The engine calls this
// after every synthesis; services that hold their own interner pins
// around request handling call it again after those pins drop.
func (e *Engine) MaybeReclaim() (expr.ReclaimStats, bool) {
	hw := e.internerHighWater
	if hw <= 0 || expr.InternerStats().Bytes < hw {
		return expr.ReclaimStats{Epoch: expr.Epoch()}, false
	}
	if e.active.Load() == 0 {
		if st, ok := e.tryReclaim(); ok {
			return st, true
		}
	}
	// In-flight work held the gate. Rate-limited forced quiescence: block
	// new pins for up to sweepQuiesceWait while the current runs finish.
	now := time.Now().UnixNano()
	last := e.lastQuiesce.Load()
	if now-last < int64(sweepCooldown) || !e.lastQuiesce.CompareAndSwap(last, now) {
		return expr.ReclaimStats{Epoch: expr.Epoch()}, false
	}
	st, ok := expr.ReclaimWait(sweepQuiesceWait)
	if ok {
		e.sweeps.Add(1)
		e.sweptBytes.Add(st.BytesReclaimed)
	}
	return st, ok
}

// Reclaim forces one epoch sweep regardless of the watermark, if no
// synthesis is in flight. It returns the sweep stats and whether the
// sweep ran (ok=false: in-flight work held the gate; retry when idle).
// esdserve exposes this as POST /reclaim.
func (e *Engine) Reclaim() (expr.ReclaimStats, bool) {
	return e.tryReclaim()
}

func (e *Engine) tryReclaim() (expr.ReclaimStats, bool) {
	st, ok := expr.TryReclaim()
	if ok {
		e.sweeps.Add(1)
		e.sweptBytes.Add(st.BytesReclaimed)
	}
	return st, ok
}

// EngineStats is a point-in-time snapshot of an Engine's cumulative
// activity and shared-cache health (the /healthz payload of esdserve).
type EngineStats struct {
	// Active is the number of syntheses currently running.
	Active int64 `json:"active"`
	// BatchQueueDepth is the number of batch reports queued but not yet
	// picked up by a worker, summed over in-flight SynthesizeBatch calls.
	BatchQueueDepth int64 `json:"batch_queue_depth"`
	// Synthesized counts completed synthesis calls; Found counts the
	// subset that reproduced their bug.
	Synthesized int64 `json:"synthesized"`
	Found       int64 `json:"found"`
	// PortfolioRaces counts WithPortfolio syntheses; PortfolioWins the
	// subset where some variant reproduced the bug.
	PortfolioRaces int64 `json:"portfolio_races"`
	PortfolioWins  int64 `json:"portfolio_wins"`
	// ProgramsCompiled and CompileCacheHits report Compile traffic;
	// ProgramsCached is the memo's current (bounded) size.
	ProgramsCompiled int64 `json:"programs_compiled"`
	CompileCacheHits int64 `json:"compile_cache_hits"`
	ProgramsCached   int   `json:"programs_cached"`
	// DistCacheHits/Misses report fingerprint-keyed distance-table
	// sharing across runs (process-wide, not per engine).
	DistCacheHits   int64 `json:"dist_cache_hits"`
	DistCacheMisses int64 `json:"dist_cache_misses"`
	// Interner is the global hash-consed term store's footprint, including
	// the reclaim epoch, sweep count, and cumulative bytes reclaimed.
	Interner InternerStats `json:"interner"`
	// InternerHighWater is this engine's reclaim watermark in bytes
	// (0 = reclamation disabled); Sweeps and SweptBytes count the sweeps
	// this engine triggered and the bytes they released (the Interner
	// fields above are process-wide).
	InternerHighWater int64 `json:"interner_high_water"`
	Sweeps            int64 `json:"engine_sweeps"`
	SweptBytes        int64 `json:"engine_swept_bytes"`
	// PersistentCache snapshots the cross-run solver-fact store
	// (WithPersistentCache); nil when no cache directory is configured.
	// PersistentCacheError is why the configured store failed to open
	// (empty otherwise) — the engine degrades to in-memory caching.
	PersistentCache      *pcache.Stats `json:"persistent_cache,omitempty"`
	PersistentCacheError string        `json:"persistent_cache_error,omitempty"`
}

// Stats snapshots the engine.
func (e *Engine) Stats() EngineStats {
	hits, misses := dist.SharedCacheStats()
	e.mu.Lock()
	cached := len(e.programs)
	e.mu.Unlock()
	st := EngineStats{
		Active:            e.active.Load(),
		BatchQueueDepth:   e.batchQueued.Load(),
		Synthesized:       e.synthesized.Load(),
		Found:             e.found.Load(),
		PortfolioRaces:    e.portfolioRaces.Load(),
		PortfolioWins:     e.portfolioWon.Load(),
		ProgramsCompiled:  e.compiled.Load(),
		CompileCacheHits:  e.compileHits.Load(),
		ProgramsCached:    cached,
		DistCacheHits:     hits,
		DistCacheMisses:   misses,
		Interner:          expr.InternerStats(),
		InternerHighWater: e.internerHighWater,
		Sweeps:            e.sweeps.Load(),
		SweptBytes:        e.sweptBytes.Load(),
	}
	if e.pcache != nil {
		pst := e.pcache.Stats()
		st.PersistentCache = &pst
	}
	if e.pcacheErr != nil {
		st.PersistentCacheError = e.pcacheErr.Error()
	}
	return st
}
