package esd_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"esd"
)

// synthWithTelemetry runs one listing1 synthesis with the flight recorder
// attached and returns its report.
func synthWithTelemetry(t *testing.T, eng *esd.Engine) (*esd.Result, *esd.FlightReport) {
	t.Helper()
	prog, rep := appProgReport(t, "listing1")
	res, err := eng.Synthesize(context.Background(), prog, rep,
		esd.WithBudget(time.Minute), esd.WithSeed(1), esd.WithTelemetry())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("listing1 synthesis did not reproduce the bug")
	}
	fr := res.Report()
	if fr == nil {
		t.Fatal("Report() = nil with WithTelemetry")
	}
	return res, fr
}

// TestFlightReportContents checks the report carries the run's summary
// counters: the solver-vs-search wall split and per-policy fork counts
// (the ISSUE's acceptance numbers).
func TestFlightReportContents(t *testing.T) {
	res, fr := synthWithTelemetry(t, esd.New())

	if fr.Schema != "esd.flight/v1" {
		t.Errorf("Schema = %q", fr.Schema)
	}
	if fr.Outcome != "found" {
		t.Errorf("Outcome = %q, want found", fr.Outcome)
	}
	if fr.Steps != res.Stats.Steps || fr.States != res.Stats.States {
		t.Errorf("report work counters (%d steps, %d states) disagree with Stats (%d, %d)",
			fr.Steps, fr.States, res.Stats.Steps, res.Stats.States)
	}
	if fr.Solver.Queries != int64(res.Stats.SolverQueries) {
		t.Errorf("Solver.Queries = %d, want %d", fr.Solver.Queries, res.Stats.SolverQueries)
	}
	if _, ok := fr.Forks["branch"]; !ok {
		t.Errorf("Forks missing the branch kind: %v", fr.Forks)
	}
	if len(fr.Trace) == 0 {
		t.Error("empty trace")
	}
	last := fr.Trace[len(fr.Trace)-1]
	if last.Kind != "phase" || last.Phase != "done" {
		t.Errorf("trace should end at the done phase transition, got %+v", last)
	}
	w := fr.Wall
	if w == nil {
		t.Fatal("Wall section missing from a live run")
	}
	if w.TotalNS <= 0 || w.SearchNS < 0 || w.SolverNS < 0 {
		t.Errorf("implausible wall split: %+v", w)
	}
	if w.SearchNS+w.SolverNS > w.TotalNS {
		t.Errorf("search (%d) + solver (%d) exceed total (%d)", w.SearchNS, w.SolverNS, w.TotalNS)
	}
}

// TestFlightReportDeterministic is the golden double-replay: two runs of
// the same program, report, and seed must produce byte-identical
// DeterministicJSON (wall-clock and cache-warmth effects are confined to
// the stripped Wall section).
func TestFlightReportDeterministic(t *testing.T) {
	// One engine for both runs: the second run hits every warm cache
	// (compile memo, distance tables, pooled solver), which is exactly the
	// nondeterminism the contract has to absorb.
	eng := esd.New()
	_, fr1 := synthWithTelemetry(t, eng)
	_, fr2 := synthWithTelemetry(t, eng)

	d1, err := fr1.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := fr2.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("DeterministicJSON differs across identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", d1, d2)
	}
}

// TestReportNilWithoutTelemetry pins the disabled path: no recorder, no
// report, no cost.
func TestReportNilWithoutTelemetry(t *testing.T) {
	prog, rep := appProgReport(t, "listing1")
	res, err := esd.New().Synthesize(context.Background(), prog, rep,
		esd.WithBudget(time.Minute), esd.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() != nil {
		t.Fatal("Report() should be nil when telemetry is off")
	}
}
