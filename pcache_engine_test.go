package esd_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"esd"
)

// synthCached runs one listing1 synthesis on an engine with (or without)
// a persistent cache attached and returns the result and flight report.
func synthCached(t *testing.T, eng *esd.Engine) (*esd.Result, *esd.FlightReport) {
	t.Helper()
	prog, rep := appProgReport(t, "listing1")
	res, err := eng.Synthesize(context.Background(), prog, rep,
		esd.WithBudget(time.Minute), esd.WithSeed(1), esd.WithTelemetry())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("listing1 synthesis did not reproduce the bug")
	}
	return res, res.Report()
}

// TestPersistentCacheWarmDeterminism is the warm-cache determinism
// golden: a cold run and a persistent-warm run (fresh engine, same cache
// directory, simulating a process restart) must produce byte-identical
// synthesized executions and DeterministicJSON — the warm run may only
// be faster, never different. The warm run must also actually be warm:
// persistent hits observed, publishes on disk.
func TestPersistentCacheWarmDeterminism(t *testing.T) {
	dir := t.TempDir()

	cold := esd.New(esd.WithPersistentCache(dir))
	if err := cold.PersistentCacheError(); err != nil {
		t.Fatal(err)
	}
	resCold, frCold := synthCached(t, cold)
	if resCold.Stats.SolverPersistentHits != 0 {
		t.Errorf("cold run reported %d persistent hits against an empty store", resCold.Stats.SolverPersistentHits)
	}
	st := cold.Stats()
	if st.PersistentCache == nil || st.PersistentCache.Publishes == 0 {
		t.Fatalf("cold run published nothing to the persistent store: %+v", st.PersistentCache)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm := esd.New(esd.WithPersistentCache(dir))
	if err := warm.PersistentCacheError(); err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	resWarm, frWarm := synthCached(t, warm)
	if resWarm.Stats.SolverPersistentHits == 0 {
		t.Error("warm run took no persistent hits")
	}
	if resWarm.Stats.SolverVerifyRejects != 0 {
		t.Errorf("warm run rejected %d of its own store's models on re-verification", resWarm.Stats.SolverVerifyRejects)
	}

	exCold, err := resCold.Execution.JSON()
	if err != nil {
		t.Fatal(err)
	}
	exWarm, err := resWarm.Execution.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exCold, exWarm) {
		t.Errorf("synthesized executions differ cold vs persistent-warm:\n--- cold ---\n%s\n--- warm ---\n%s", exCold, exWarm)
	}
	dCold, err := frCold.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	dWarm, err := frWarm.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dCold, dWarm) {
		t.Errorf("DeterministicJSON differs cold vs persistent-warm:\n--- cold ---\n%s\n--- warm ---\n%s", dCold, dWarm)
	}
	// The warmth must be visible where it belongs: the stripped Wall
	// section of the live report.
	if frWarm.Wall == nil || frWarm.Wall.SolverPersistentHits == 0 {
		t.Error("warm run's Wall section records no persistent hits")
	}
}

// TestPersistentCacheOpenFailureDegrades pins the failure mode: an
// unopenable cache directory must not break synthesis, only surface
// through PersistentCacheError and the stats payload.
func TestPersistentCacheOpenFailureDegrades(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := esd.New(esd.WithPersistentCache(filepath.Join(blocker, "cache")))
	if eng.PersistentCacheError() == nil {
		t.Fatal("PersistentCacheError() = nil for an unopenable directory")
	}
	if st := eng.Stats(); st.PersistentCacheError == "" || st.PersistentCache != nil {
		t.Errorf("stats do not reflect the degraded store: %+v", st)
	}
	res, _ := synthCached(t, eng)
	if res.Stats.SolverPersistentHits != 0 {
		t.Error("degraded engine reported persistent hits")
	}
	if err := eng.Close(); err != nil {
		t.Errorf("Close on a degraded engine: %v", err)
	}
}
