// triage: the automated bug-triage usage model of §8.
//
// In a bug-tracking pipeline, every incoming coredump is passed through
// ESD; the synthesized execution is attached to the ticket, and two
// tickets whose synthesized executions are identical are duplicates of the
// same bug. This example files three "tickets" against the ls utility —
// two different manifestations of the same injected bug and one distinct
// bug — and shows deduplication finding the pair.
//
// Run with: go run ./examples/triage
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"esd"
	"esd/internal/apps"
	"esd/internal/usersite"
)

func main() {
	app := apps.Get("ls2") // all four ls bugs live in the same binary
	m, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	prog := &esd.Program{MIR: m}

	// Three user reports: two users hit the -r -t empty-directory crash
	// (with different terminal widths — irrelevant noise), one hit the
	// unknown-option crash.
	tickets := []struct {
		id string
		in *esd.UserInputs
	}{
		{"TICKET-101", &usersite.Inputs{Named: map[string]int64{
			"opt1": 'r', "opt2": 't', "opt3": 0, "opt4": 0,
			"dir_seed": 9, "dir_count": 0, "term_width": 80}}},
		{"TICKET-102", &usersite.Inputs{Named: map[string]int64{
			"opt1": 't', "opt2": 'r', "opt3": 0, "opt4": 0,
			"dir_seed": 4242, "dir_count": 0, "term_width": 132}}},
		{"TICKET-103", &usersite.Inputs{Named: map[string]int64{
			"opt1": '-', "opt2": 'x', "opt3": 0, "opt4": 0,
			"dir_seed": 1, "dir_count": 3, "term_width": 80}}},
	}

	// The §8 triage workload is exactly what the engine's batch entry
	// point is for: every ticket shares one compiled program, one set of
	// distance tables, and the warm solver pool.
	var reports []*esd.BugReport
	for _, tk := range tickets {
		rep, err := esd.SimulateUserSite(prog, tk.in)
		if err != nil {
			log.Fatalf("%s: user site: %v", tk.id, err)
		}
		reports = append(reports, rep)
	}
	eng := esd.New()
	results, err := eng.SynthesizeBatch(context.Background(), prog, reports,
		esd.WithBudget(60*time.Second), esd.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	execs := map[string]*esd.Execution{}
	for i, tk := range tickets {
		res := results[i]
		if res.Err != nil {
			log.Fatalf("%s: %v", tk.id, res.Err)
		}
		if !res.Found {
			log.Fatalf("%s: synthesis failed", tk.id)
		}
		execs[tk.id] = res.Execution
		fmt.Printf("%s: synthesized (%s) fingerprint %s\n",
			tk.id, res.Execution.E.BugSummary, res.Execution.E.Fingerprint())
	}

	fmt.Println("\ndeduplication:")
	ids := []string{"TICKET-101", "TICKET-102", "TICKET-103"}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			same := execs[ids[i]].SameBug(execs[ids[j]])
			verdict := "distinct bugs"
			if same {
				verdict = "SAME bug — mark duplicate"
			}
			fmt.Printf("  %s vs %s: %s\n", ids[i], ids[j], verdict)
		}
	}
}
