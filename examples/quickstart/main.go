// Quickstart: the full execution-synthesis workflow on the paper's
// Listing 1 deadlock, end to end:
//
//  1. compile the buggy program,
//  2. simulate the user site (concrete run, random OS preemptions) until
//     the deadlock manifests and take the coredump,
//  3. hand program + coredump to ESD, which synthesizes the inputs
//     (getchar must return 'm', getenv("mode") must start with 'Y') and
//     the thread schedule, and
//  4. play the synthesized execution back — deterministically — in the
//     debugger environment.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"esd"
)

const listing1 = `
// Listing 1 from the paper: two threads deadlock in critical_section
// iff mode == MOD_Y && idx == 1.
int idx;
int mode;
int M1;
int M2;

int critical_section(int tid) {
	lock(&M1);
	lock(&M2);
	int work = 0;
	if (mode == 2 && idx == 1) {
		unlock(&M1);
		work = work + tid;
		lock(&M1);        // deadlock site ("line 12")
	}
	unlock(&M2);
	unlock(&M1);
	return work;
}

int main() {
	idx = 0;
	if (getchar() == 'm') {
		idx++;
	}
	if (getenv("mode")[0] == 'Y') {
		mode = 2;
	} else {
		mode = 3;
	}
	int t1 = thread_create(critical_section, 1);
	int t2 = thread_create(critical_section, 2);
	thread_join(t1);
	thread_join(t2);
	return 0;
}`

func main() {
	// 1. Compile.
	prog, err := esd.CompileMiniC("listing1.c", listing1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled listing1.c: %d MIR instructions\n\n", prog.NumInstrs())

	// 2. The user site: the user ran the program with stdin "m" and
	// mode=Yes; after some runs the OS scheduler hit the bad interleaving.
	fmt.Println("simulating the user site (no tracing, no instrumentation)...")
	rep, err := esd.SimulateUserSite(prog, &esd.UserInputs{
		Stdin: []int64{'m'},
		Env:   map[string]string{"mode": "Yes"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the user's coredump says:")
	fmt.Println(rep)

	// 3. Execution synthesis: note ESD gets ONLY the program and the
	// coredump — not the inputs, not the schedule.
	fmt.Println("synthesizing an execution that explains the coredump...")
	eng := esd.New()
	res, err := eng.Synthesize(context.Background(), prog, rep,
		esd.WithBudget(60*time.Second), esd.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatalf("no execution found (%.1fs, %d states)", res.Stats.Duration.Seconds(), res.Stats.States)
	}
	fmt.Printf("synthesized in %.2fs (%d instructions, %d states, %d solver queries)\n",
		res.Stats.Duration.Seconds(), res.Stats.Steps, res.Stats.States, res.Stats.SolverQueries)
	fmt.Println(res.Execution)

	// 4. Deterministic playback, three times to make the point.
	for i := 1; i <= 3; i++ {
		player, err := esd.NewPlayer(prog, res.Execution, esd.Strict)
		if err != nil {
			log.Fatal(err)
		}
		final, err := player.Run(1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("playback #%d: %v\n", i, final.Status)
	}
	fmt.Println("\nthe deadlock reproduces on every run — attach your debugger and fix it.")
}
