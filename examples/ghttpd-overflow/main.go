// ghttpd-overflow: synthesizing a crashing request for a Web server.
//
// The ghttpd 1.4 vulnerability (SecurityFocus BID 5960) is a buffer
// overflow on the logging path: serveconnection() passes the GET URL to
// Log(), which copies it into a fixed-size buffer without bounds checks.
// The coredump only says "out-of-bounds store inside do_log". ESD works
// backward from that and synthesizes a complete malicious HTTP request —
// method, URL long enough to overflow, terminators — byte by byte.
//
// Run with: go run ./examples/ghttpd-overflow
package main

import (
	"fmt"
	"log"
	"time"

	"esd"
)

const server = `
// A scaled model of ghttpd's request path (buffer sizes reduced; the
// unchecked-copy bug mechanism is the real one).
int req_method[8];
int req_url[32];
int url_len;
int served;
int log_lines;

int read_token(int *dst, int cap, int term) {
	int n = 0;
	int c = getchar();
	while (c != term && c != -1 && c != '\n') {
		if (n >= cap - 1) {
			return -1;
		}
		dst[n] = c;
		n++;
		c = getchar();
	}
	dst[n] = 0;
	return n;
}

int parse_request() {
	int m = read_token(req_method, 8, ' ');
	if (m <= 0) {
		return -1;
	}
	url_len = read_token(req_url, 32, ' ');
	if (url_len <= 0) {
		return -1;
	}
	return 0;
}

int is_get() {
	if (req_method[0] == 'G' && req_method[1] == 'E' && req_method[2] == 'T') {
		return 1;
	}
	return 0;
}

int do_log(int ip) {
	int line[16];
	line[0] = '0' + ip % 10;
	line[1] = ' ';
	int pos = 2;
	for (int i = 0; i < url_len; i++) {
		line[pos] = req_url[i];    // unchecked copy: the overflow
		pos++;
	}
	line[pos] = 0;
	log_lines++;
	return line[0];
}

int serveconnection(int ip) {
	if (parse_request() < 0) {
		return -1;
	}
	if (!is_get()) {
		return -1;
	}
	do_log(ip);
	served++;
	return 0;
}

int main() {
	return serveconnection(7);
}`

func main() {
	prog, err := esd.CompileMiniC("ghttpd.c", server)
	if err != nil {
		log.Fatal(err)
	}

	// The user site: an attacker sent a long URL; the server crashed.
	fmt.Println("user site: server crashes on a long GET request...")
	rep, err := esd.SimulateUserSite(prog, &esd.UserInputs{
		Stdin: stdin("GET /cgi-bin/aaaaaaaaaaaaaaaaaaaa H"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	fmt.Println("synthesizing a request that reaches the same crash...")
	res, err := esd.Synthesize(prog, rep, esd.Options{Timeout: 120 * time.Second, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatalf("not synthesized within budget (%.1fs)", res.Stats.Duration.Seconds())
	}
	fmt.Printf("synthesized in %.2fs (%d states explored)\n\n",
		res.Stats.Duration.Seconds(), res.Stats.States)

	// Decode the synthesized stdin back into a request string.
	var req []byte
	for seq := 0; ; seq++ {
		v := res.Execution.E.Getchar(seq)
		if v < 0 {
			break
		}
		if v >= 32 && v < 127 {
			req = append(req, byte(v))
		} else {
			req = append(req, '.')
		}
	}
	fmt.Printf("synthesized request bytes: %q\n", string(req))
	fmt.Println("note the synthesized URL is just long enough to overflow the log buffer —")
	fmt.Println("ESD found the minimal explanation, not the attacker's exact bytes.")

	player, err := esd.NewPlayer(prog, res.Execution, esd.Strict)
	if err != nil {
		log.Fatal(err)
	}
	final, err := player.Run(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplayback: %v\n", final.Status)
	if final.Crash != nil {
		fmt.Printf("reproduced: %s\n", final.Crash)
	}
}

func stdin(s string) []int64 {
	out := make([]int64, len(s))
	for i := range s {
		out[i] = int64(s[i])
	}
	return out
}
