// sqlite-deadlock: debugging a library hang with the interactive workflow.
//
// This walks the Table-1 SQLite scenario (bug #1672, a deadlock rooted in
// the library's custom recursive mutex) the way §7.1 describes debugging a
// shared library: a driver program exercises the suspected entry points,
// the user-site coredump names only the two blocked call stacks, and ESD
// synthesizes configuration + schedule. The synthesized execution is then
// inspected with the playback debugger: breakpoints on the lock sites,
// thread states at the deadlock, and the happens-before event list.
//
// Run with: go run ./examples/sqlite-deadlock
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"esd"
	"esd/internal/apps"
)

// sourceLine finds the 1-based line of the first occurrence of needle.
func sourceLine(src, needle string) int {
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	return 0
}

func main() {
	app := apps.Get("sqlite")
	m, err := app.Program()
	if err != nil {
		log.Fatal(err)
	}
	prog := &esd.Program{MIR: m}
	fmt.Printf("target: %s (%s)\n%s\n\n", app.Name, app.Manifestation, app.Description)

	rep, err := app.Coredump()
	if err != nil {
		log.Fatal(err)
	}
	bugReport := &esd.BugReport{R: rep}
	fmt.Println("the field coredump:")
	fmt.Println(bugReport)

	res, err := esd.Synthesize(prog, bugReport, esd.Options{Timeout: 120 * time.Second, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		log.Fatal("synthesis failed")
	}
	fmt.Printf("synthesized in %.2fs\n", res.Stats.Duration.Seconds())
	fmt.Println(res.Execution)

	// Replay under the debugger: break at the recursive-mutex layer and
	// watch the threads converge on the deadlock.
	player, err := esd.NewPlayer(prog, res.Execution, esd.Strict)
	if err != nil {
		log.Fatal(err)
	}
	// Break on the OS-mutex acquisition inside the recursive-lock layer.
	bpLine := sourceLine(app.Source, "lock(&os_mutex);")
	player.AddBreakpoint("sqlite.c", bpLine)
	fmt.Printf("breakpoint set at sqlite.c:%d (lock(&os_mutex))\n", bpLine)

	hits := 0
	for {
		atBreak, err := player.Continue(2_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if !atBreak {
			break
		}
		hits++
		fmt.Printf("\nbreakpoint hit #%d: %s\n", hits, player.Where())
		for _, line := range player.Backtrace() {
			fmt.Println("  " + line)
		}
		if err := player.StepInstr(); err != nil { // step over the breakpoint
			log.Fatal(err)
		}
	}

	fmt.Printf("\n%s\n", player.Describe())
	fmt.Println("final thread states:")
	for _, l := range player.ThreadsSummary() {
		fmt.Println("  " + l)
	}
	if v, err := player.ReadGlobal("os_owner"); err == nil {
		fmt.Printf("  os_owner = %v (library mutex holder at the hang)\n", v)
	}
}
